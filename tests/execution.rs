//! Property tests of the two execution models (shared round-robin
//! executor, exclusive FCFS machine) across random timed workloads.

use partalloc::prelude::*;
use proptest::prelude::*;

/// Random timed workload with sizes < N, bounded work.
fn timed_workload(levels: u32, spec: &[(u8, u8, u8)]) -> TimedWorkload {
    let mut t = 0u64;
    let tasks = spec
        .iter()
        .map(|&(gap, size_pick, work_pick)| {
            t += u64::from(gap % 8);
            TimedTask {
                arrival: t,
                size_log2: size_pick % levels.max(1) as u8,
                work: f64::from(work_pick % 30) + 1.0,
            }
        })
        .collect();
    TimedWorkload::new(tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn executor_invariants(
        levels in 2u32..6,
        kind_pick in 0usize..5,
        spec in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..40),
    ) {
        let n = 1u64 << levels;
        let machine = BuddyTree::new(n).unwrap();
        let w = timed_workload(levels, &spec);
        let kinds = [
            AllocatorKind::Constant,
            AllocatorKind::Greedy,
            AllocatorKind::Basic,
            AllocatorKind::DRealloc(1),
            AllocatorKind::Randomized,
        ];
        let kind = kinds[kind_pick];
        let r = execute(kind.build(machine, 7), &w, &ExecutorConfig::ideal());

        // Every task completes after its arrival, no faster than its
        // unshared work, and stretch reflects exactly that.
        for (i, task) in w.tasks().iter().enumerate() {
            prop_assert!(r.completion[i] > task.arrival);
            prop_assert!(
                (r.response[i] as f64) + 1e-9 >= task.work.floor(),
                "task {i} finished faster than its work"
            );
            prop_assert!(r.stretch[i] >= 0.99, "stretch below 1 for task {i}");
        }
        prop_assert_eq!(r.makespan, r.completion.iter().copied().max().unwrap());
        // Aggregate throughput bound: N PEs can retire at most N
        // PE-ticks of weighted work per tick (round-robin with c = 0
        // is work-conserving per PE).
        prop_assert!(
            (r.makespan as f64) * n as f64 + 1e-6 >= w.total_weighted_work(),
            "makespan below the throughput floor"
        );
    }

    #[test]
    fn overhead_never_helps(
        levels in 2u32..5,
        spec in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..30),
    ) {
        let n = 1u64 << levels;
        let machine = BuddyTree::new(n).unwrap();
        let w = timed_workload(levels, &spec);
        let ideal = execute(Greedy::new(machine), &w, &ExecutorConfig::ideal());
        let costly = execute(Greedy::new(machine), &w, &ExecutorConfig::with_overhead(0.5));
        prop_assert!(costly.mean_stretch + 1e-9 >= ideal.mean_stretch);
        prop_assert!(costly.makespan >= ideal.makespan);
    }

    #[test]
    fn exclusive_invariants(
        levels in 2u32..5,
        strategy_pick in 0usize..3,
        spec in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..30),
    ) {
        let w = timed_workload(levels, &spec);
        let strategies: [&dyn SubcubeStrategy; 3] =
            [&BuddyStrategy, &GrayCodeStrategy, &FullRecognition];
        let r = run_exclusive(levels, strategies[strategy_pick], &w);

        for (i, task) in w.tasks().iter().enumerate() {
            prop_assert!(r.start[i] >= task.arrival, "task {i} started early");
            // Exclusive runs are unshared: completion = start + ceil(work).
            let run_ticks = (task.work.ceil() as u64).max(1);
            prop_assert_eq!(r.completion[i], r.start[i] + run_ticks);
            prop_assert!(r.stretch[i] >= 0.99);
        }
        prop_assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
        // FCFS: start times respect arrival order for equal-size tasks
        // (the head blocks, so a later equal request can never start
        // strictly earlier than an earlier one of the same size).
        for i in 0..w.len() {
            for j in (i + 1)..w.len() {
                let (a, b) = (&w.tasks()[i], &w.tasks()[j]);
                if a.size_log2 == b.size_log2 && a.arrival <= b.arrival {
                    prop_assert!(
                        r.start[i] <= r.start[j],
                        "FCFS violated between tasks {i} and {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_and_exclusive_agree_when_uncontended(
        levels in 2u32..5,
        work in 1u8..20,
    ) {
        // A single task: both worlds run it unshared at full speed.
        let n = 1u64 << levels;
        let machine = BuddyTree::new(n).unwrap();
        let w = TimedWorkload::new(vec![TimedTask {
            arrival: 0,
            size_log2: (levels - 1) as u8,
            work: f64::from(work),
        }]);
        let shared = execute(Greedy::new(machine), &w, &ExecutorConfig::ideal());
        let exclusive = run_exclusive(levels, &BuddyStrategy, &w);
        prop_assert_eq!(shared.completion[0], u64::from(work));
        prop_assert_eq!(exclusive.completion[0], u64::from(work));
    }
}
