//! Large-scale stress tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored`). They pin the scalability
//! claims: `O(log N)` per-event allocation on million-PE machines, the
//! adversary at depth, and long-haul allocator consistency.

use partalloc::prelude::*;

/// Greedy on a 2^20-PE machine: 100k events must complete quickly
/// (the PathTree engine is O(log² N) per event; a naive engine would
/// need ~10^11 operations here).
#[test]
#[ignore = "large-scale stress; run with --ignored --release"]
fn greedy_on_a_million_pes() {
    let levels = 20;
    let n = 1u64 << levels;
    let machine = BuddyTree::new(n).unwrap();
    let seq = ClosedLoopConfig::new(n)
        .events(100_000)
        .target_load(2)
        .sizes(SizeDistribution::Geometric {
            max_log2: (levels - 1) as u8,
            ratio: 0.7,
        })
        .generate(1);
    let start = std::time::Instant::now();
    let m = run_sequence(Greedy::new(machine), &seq);
    let elapsed = start.elapsed();
    assert!(m.peak_load <= bounds::greedy_upper_factor(n) * m.lstar);
    assert!(
        elapsed.as_secs() < 60,
        "100k events on 2^20 PEs took {elapsed:?}"
    );
    println!(
        "2^20 PEs, 100k events: peak {} (L* {}), {:?} ({:.0} events/s)",
        m.peak_load,
        m.lstar,
        elapsed,
        100_000.0 / elapsed.as_secs_f64()
    );
}

/// The full adversary game at log N = 16: 65k-PE machine, 16 phases.
#[test]
#[ignore = "large-scale stress; run with --ignored --release"]
fn adversary_at_depth_sixteen() {
    let machine = BuddyTree::with_levels(16).unwrap();
    let mut g = Greedy::new(machine);
    let out = DeterministicAdversary::new(u64::MAX).run(&mut g);
    assert_eq!(out.lstar, 1);
    // guarantee = ⌈17/2⌉ = 9.
    assert_eq!(out.guaranteed_load, 9);
    assert!(out.peak_load >= 9);
    assert!(out.peak_load <= bounds::greedy_upper_factor(1 << 16)); // Thm 4.1 with L* = 1
    println!(
        "adversary at 2^16: forced {} over {} events",
        out.peak_load,
        out.sequence.len()
    );
}

/// A_M(d=2) through one million events: bounds hold, state stays
/// consistent (final active size re-derivable from placements).
#[test]
#[ignore = "large-scale stress; run with --ignored --release"]
fn dreallocation_long_haul() {
    let n = 4096u64;
    let machine = BuddyTree::new(n).unwrap();
    let seq = ClosedLoopConfig::new(n)
        .events(1_000_000)
        .target_load(3)
        .generate(2);
    let mut alloc = DReallocation::new(machine, 2);
    let m = run_sequence_dyn(&mut alloc, &seq);
    assert!(m.peak_load <= bounds::det_upper_factor(n, 2) * m.lstar);
    let derived: u64 = alloc
        .active_tasks()
        .iter()
        .map(|&(_, x, _)| 1u64 << x)
        .sum();
    assert_eq!(derived, alloc.active_size());
    println!(
        "1M events: peak {} (L* {}), {} reallocations, {} migrations",
        m.peak_load, m.lstar, m.realloc_events, m.physical_migrations
    );
}

/// Parallel sweep saturating all cores with real runs.
#[test]
#[ignore = "large-scale stress; run with --ignored --release"]
fn sweep_saturation() {
    let n = 1024u64;
    let machine = BuddyTree::new(n).unwrap();
    let points: Vec<(u64, u64)> = (0..64).map(|i| (i % 8, i)).collect();
    let peaks = parallel_sweep(&points, |&(d, seed)| {
        let seq = ClosedLoopConfig::new(n).events(20_000).generate(seed);
        run_sequence(DReallocation::new(machine, d), &seq).peak_load
    });
    assert_eq!(peaks.len(), 64);
    assert!(peaks.iter().all(|&p| p >= 1));
}
