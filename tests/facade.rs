//! Facade-level tests: the `partalloc::prelude` surface is usable
//! as documented, and the README/lib.rs quickstart really holds.

use partalloc::prelude::*;

#[test]
fn lib_doc_quickstart_holds() {
    let machine = BuddyTree::new(64).unwrap();
    let workload = ClosedLoopConfig::new(64)
        .events(2_000)
        .target_load(3)
        .generate(42);
    let alloc = DReallocation::new(machine, 2);
    let run = run_sequence(alloc, &workload);
    let lstar = workload.optimal_load(64);
    assert!(run.peak_load <= (2 + 1) * lstar);
}

#[test]
fn figure1_accessible_from_facade() {
    let seq = figure1_sigma_star();
    let machine = BuddyTree::new(4).unwrap();
    assert_eq!(run_sequence(Greedy::new(machine), &seq).peak_load, 2);
    assert_eq!(run_sequence(Constant::new(machine), &seq).peak_load, 1);
    let lazy = DReallocation::with_options(machine, 1, EpochPolicy::Unified, ReallocTrigger::Lazy);
    assert_eq!(run_sequence(lazy, &seq).peak_load, 1);
}

#[test]
fn bounds_module_reachable() {
    assert_eq!(bounds::greedy_upper_factor(1024), 6);
    assert_eq!(bounds::det_upper_factor(1024, 2), 3);
    assert!(bounds::rand_upper_factor(1024) > 1.0);
}

#[test]
fn topologies_reachable_and_consistent() {
    let tree = TreeMachine::new(64).unwrap();
    let cube = Hypercube::new(64).unwrap();
    let mesh = Mesh2D::new(64).unwrap();
    let bfly = Butterfly::new(64).unwrap();
    let fat = FatTree::new(64).unwrap();
    for topo in [&tree as &dyn Partitionable, &cube, &mesh, &bfly, &fat] {
        assert_eq!(topo.num_pes(), 64);
        assert_eq!(topo.buddy(), BuddyTree::new(64).unwrap());
    }
    assert_eq!(tree.kind(), TopologyKind::Tree);
    assert_eq!(fat.kind().name(), "fat-tree");
}

#[test]
fn boxed_allocators_satisfy_the_trait() {
    // `impl Allocator for Box<dyn Allocator>` lets sweep-built boxes
    // feed the by-value harness entry points.
    let machine = BuddyTree::new(32).unwrap();
    let seq = ClosedLoopConfig::new(32).events(300).generate(3);
    let boxed: Box<dyn Allocator> = AllocatorKind::Greedy.build(machine, 0);
    let m = run_sequence(boxed, &seq);
    assert!(m.peak_load >= m.lstar);
    let boxed2: Box<dyn Allocator> = AllocatorKind::Basic.build(machine, 0);
    let s = run_with_slowdowns(boxed2, &seq);
    assert!(s.worst >= 1);
}

#[test]
fn cost_model_via_facade() {
    let machine = BuddyTree::new(32).unwrap();
    let topo = TreeMachine::new(32).unwrap();
    let seq = BurstyConfig::new(32).cycles(4).generate(2);
    let (m, cost) = run_with_cost(
        Constant::new(machine),
        &seq,
        &topo,
        &MigrationCostModel::standard(),
    );
    assert_eq!(cost.physical_migrations, m.physical_migrations);
}
