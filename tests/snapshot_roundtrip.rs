//! Checkpoint/restore round trips across every algorithm kind: warm an
//! allocator up on a random prefix, snapshot, restore, and require the
//! restored instance to be observationally equivalent (identical PE
//! loads and placements) and — for the deterministic algorithms — to
//! replay the rest of the sequence identically.

use partalloc::core::{restore, snapshot};
use partalloc::prelude::*;
use proptest::prelude::*;

fn deterministic_kinds() -> Vec<AllocatorKind> {
    vec![
        AllocatorKind::Greedy,
        AllocatorKind::Basic,
        AllocatorKind::BasicFit(CopyFit::BestFit),
        AllocatorKind::Constant,
        AllocatorKind::DRealloc(1),
        AllocatorKind::DRealloc(2),
        AllocatorKind::LeftmostAlways,
    ]
}

#[test]
fn roundtrip_preserves_state_and_future() {
    let n = 64u64;
    let machine = BuddyTree::new(n).unwrap();
    let seq = ClosedLoopConfig::new(n)
        .events(600)
        .target_load(2)
        .generate(9);
    let cut = 300;

    for kind in deterministic_kinds() {
        // Drive the original through the prefix, tracking the epoch
        // counter from observable outcomes (reset on realloc, add on
        // arrival).
        let mut original = kind.build(machine, 4);
        let mut arrived = 0u64;
        for ev in &seq.events()[..cut] {
            match original.handle(ev) {
                partalloc::core::EventOutcome::Arrival(out) => {
                    if out.reallocated {
                        arrived = 0;
                    } else {
                        arrived += match *ev {
                            Event::Arrival { size_log2, .. } => 1u64 << size_log2,
                            _ => unreachable!(),
                        };
                    }
                }
                partalloc::core::EventOutcome::Departure(_) => {}
            }
        }
        let snap = snapshot(original.as_ref(), kind, 4, arrived);
        let mut restored = restore(&snap, kind).unwrap_or_else(|e| {
            panic!("restore failed for {}: {e}", kind.label());
        });

        // Observational equivalence at the checkpoint.
        for pe in 0..machine.num_pes() {
            assert_eq!(
                original.pe_load(pe),
                restored.pe_load(pe),
                "pe {pe} differs after restore of {}",
                kind.label()
            );
        }
        assert_eq!(original.active_size(), restored.active_size());
        for (id, x, p) in original.active_tasks() {
            assert_eq!(restored.placement_of(id), Some(p), "{}", kind.label());
            let _ = x;
        }

        // Identical future (deterministic kinds, load-driven or
        // copy-driven — both depend only on the restored state).
        for ev in &seq.events()[cut..] {
            let a = original.handle(ev);
            let b = restored.handle(ev);
            assert_eq!(a, b, "future diverged after restore of {}", kind.label());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_cut_points_roundtrip(
        seed in 0u64..1000,
        cut_frac in 0.0f64..1.0,
        kind_pick in 0usize..7,
    ) {
        let n = 32u64;
        let machine = BuddyTree::new(n).unwrap();
        let seq = BurstyConfig::new(n).cycles(6).generate(seed);
        let cut = ((seq.len() as f64) * cut_frac) as usize;
        let kind = deterministic_kinds()[kind_pick];

        let mut original = kind.build(machine, seed);
        let mut arrived = 0u64;
        for ev in &seq.events()[..cut] {
            match original.handle(ev) {
                partalloc::core::EventOutcome::Arrival(out) => {
                    if out.reallocated {
                        arrived = 0;
                    } else if let Event::Arrival { size_log2, .. } = *ev {
                        arrived += 1u64 << size_log2;
                    }
                }
                partalloc::core::EventOutcome::Departure(_) => {}
            }
        }
        let snap = snapshot(original.as_ref(), kind, seed, arrived);
        // Serde round trip of the snapshot itself.
        let json = serde_json::to_string(&snap).unwrap();
        let snap2: partalloc::core::Snapshot = serde_json::from_str(&json).unwrap();
        let mut restored = restore(&snap2, kind).expect("restore succeeds");
        for ev in &seq.events()[cut..] {
            prop_assert_eq!(original.handle(ev), restored.handle(ev));
        }
        prop_assert_eq!(original.max_load(), restored.max_load());
    }
}
