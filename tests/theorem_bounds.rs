//! Cross-crate validation of every theorem in the paper, on parameter
//! grids: workloads from `partalloc-workload`, adversaries from
//! `partalloc-adversary`, algorithms from `partalloc-core`, bounds
//! from `partalloc-analysis`, all driven through `partalloc-sim`.

use partalloc::prelude::*;

fn seeds() -> Vec<u64> {
    (0..5).map(|i| 1_000 + i).collect()
}

/// Theorem 3.1: A_C's peak equals L* on every workload family.
#[test]
fn theorem_3_1_constant_is_optimal() {
    for levels in [3u32, 5, 7] {
        let n = 1u64 << levels;
        for seed in seeds() {
            let gens: Vec<Box<dyn Generator>> = vec![
                Box::new(ClosedLoopConfig::new(n).events(600).target_load(3)),
                Box::new(PoissonConfig::new(n).arrivals(200)),
                Box::new(BurstyConfig::new(n).cycles(4)),
                Box::new(PhasedConfig::new(n)),
                Box::new(DiurnalConfig::new(n).events(800)),
            ];
            for g in gens {
                let seq = g.generate(seed);
                let m = run_sequence(Constant::new(BuddyTree::new(n).unwrap()), &seq);
                assert_eq!(
                    m.peak_load,
                    m.lstar,
                    "A_C suboptimal on {} (N={n}, seed={seed})",
                    g.label()
                );
            }
        }
    }
}

/// Theorem 4.1: greedy stays under ⌈(log N + 1)/2⌉ · L* (tasks < N).
#[test]
fn theorem_4_1_greedy_upper_bound() {
    for levels in [2u32, 4, 6, 8] {
        let n = 1u64 << levels;
        let factor = bounds::greedy_upper_factor(n);
        for seed in seeds() {
            for seq in [
                ClosedLoopConfig::new(n)
                    .events(1500)
                    .target_load(2)
                    .generate(seed),
                DiurnalConfig::new(n).events(1500).generate(seed),
            ] {
                let m = run_sequence(Greedy::new(BuddyTree::new(n).unwrap()), &seq);
                assert!(
                    m.peak_load <= factor * m.lstar,
                    "greedy exceeded Thm 4.1 at N={n}, seed={seed}: {} > {}",
                    m.peak_load,
                    factor * m.lstar
                );
            }
        }
    }
}

/// Theorem 4.1's *inductive claim*, checked at every greedy arrival:
/// a task of size `2^x` is assigned to a submachine whose load (before
/// the assignment) is below `⌈(x/2 + 1)·L*⌉` — i.e. at most that value
/// after it. The final-bound test above follows from this; checking
/// the claim itself verifies the proof's actual invariant.
#[test]
fn theorem_4_1_inductive_claim() {
    for levels in [3u32, 5, 7] {
        let n = 1u64 << levels;
        let machine = BuddyTree::new(n).unwrap();
        for seed in seeds() {
            let seq = ClosedLoopConfig::new(n)
                .events(1200)
                .target_load(2)
                .generate(seed);
            let lstar = seq.optimal_load(n);
            let mut g = Greedy::new(machine);
            for ev in seq.events() {
                match *ev {
                    Event::Arrival { id, size_log2 } => {
                        let out = g.on_arrival(Task::new(id, size_log2));
                        let x = u64::from(size_log2);
                        // ⌈(x/2 + 1)·L*⌉ = ⌈(x + 2)·L* / 2⌉.
                        let claim = ((x + 2) * lstar).div_ceil(2);
                        let after = g.max_load_in(out.placement.node);
                        assert!(
                            after <= claim,
                            "claim violated: size 2^{x} landed at load {after} > {claim} \
                             (N={n}, seed={seed}, L*={lstar})"
                        );
                    }
                    Event::Departure { id } => {
                        g.on_departure(id);
                    }
                }
            }
        }
    }
}

/// Theorem 4.2: A_M under min{d+1, ⌈(log N + 1)/2⌉} · L*, every d.
#[test]
fn theorem_4_2_dreallocation_bound() {
    for levels in [4u32, 6] {
        let n = 1u64 << levels;
        for d in 0..=u64::from(levels) {
            let factor = bounds::det_upper_factor(n, d);
            for seed in seeds() {
                let seq = BurstyConfig::new(n).cycles(8).generate(seed);
                let m = run_sequence(DReallocation::new(BuddyTree::new(n).unwrap(), d), &seq);
                assert!(
                    m.peak_load <= factor * m.lstar,
                    "A_M(d={d}) exceeded Thm 4.2 at N={n}, seed={seed}"
                );
            }
        }
    }
}

/// Theorem 4.3: the adversary forces ⌈(min{d, log N}+1)/2⌉ from every
/// deterministic algorithm, with L* = 1.
#[test]
fn theorem_4_3_adversary_lower_bound() {
    for levels in [4u32, 6, 8] {
        let n = 1u64 << levels;
        let machine = BuddyTree::new(n).unwrap();
        for d in [0u64, 1, 2, u64::from(levels), u64::MAX] {
            for kind in [
                AllocatorKind::Greedy,
                AllocatorKind::Basic,
                AllocatorKind::DRealloc(d),
                AllocatorKind::RoundRobin,
            ] {
                let mut alloc = kind.build(machine, 0);
                let out = DeterministicAdversary::new(d).run(&mut alloc);
                assert_eq!(out.lstar, 1);
                assert!(
                    out.peak_load >= out.guaranteed_load,
                    "{} evaded Thm 4.3 at N={n}, d={d}",
                    kind.label()
                );
                assert_eq!(
                    out.guaranteed_load,
                    bounds::det_lower_factor(n, d),
                    "guarantee formula mismatch"
                );
            }
        }
    }
}

/// Theorem 5.1: A_rand's mean peak stays under
/// (3 log N / log log N + 1) · L*.
#[test]
fn theorem_5_1_randomized_upper_bound() {
    for levels in [4u32, 6, 8] {
        let n = 1u64 << levels;
        let machine = BuddyTree::new(n).unwrap();
        let factor = bounds::rand_upper_factor(n);
        let seq = ClosedLoopConfig::new(n)
            .events(1500)
            .target_load(2)
            .generate(3);
        let lstar = seq.optimal_load(n);
        let mean: f64 = (0..20)
            .map(|s| run_sequence(RandomizedOblivious::new(machine, s), &seq).peak_load as f64)
            .sum::<f64>()
            / 20.0;
        assert!(
            mean <= factor * lstar as f64,
            "A_rand exceeded Thm 5.1 at N={n}: {mean} > {}",
            factor * lstar as f64
        );
    }
}

/// Theorem 5.2 (mechanism): the σ_r stressor hurts every
/// no-reallocation algorithm and none that reallocates.
#[test]
fn theorem_5_2_sigma_r_mechanism() {
    let machine = BuddyTree::with_levels(10).unwrap();
    let n = 1u64 << 10;
    let gen = RandomHardSequence::aggressive(machine);
    let mut frag = [0u64; 3]; // greedy, basic, randomized
    for seed in 0..8 {
        let seq = gen.generate(seed);
        let lstar = seq.optimal_load(n);
        for (i, kind) in [
            AllocatorKind::Greedy,
            AllocatorKind::Basic,
            AllocatorKind::Randomized,
        ]
        .iter()
        .enumerate()
        {
            let mut a = kind.build(machine, seed);
            let m = run_sequence_dyn(a.as_mut(), &seq);
            frag[i] += m.peak_load.saturating_sub(lstar);
        }
        // The reallocating algorithm is immune.
        let m = run_sequence(Constant::new(machine), &seq);
        assert_eq!(m.peak_load, lstar);
    }
    for (i, label) in ["A_G", "A_B", "A_rand"].iter().enumerate() {
        assert!(frag[i] > 0, "{label} never fragmented on σ_r");
    }
}

/// The paper's tightness claim: upper and lower deterministic bounds
/// within 2x of each other, and the adversary's measured force lands
/// between them.
#[test]
fn upper_and_lower_bounds_sandwich_measurements() {
    for levels in [4u32, 6, 8, 10] {
        let n = 1u64 << levels;
        let machine = BuddyTree::new(n).unwrap();
        for d in 0..=u64::from(levels) {
            let lower = bounds::det_lower_factor(n, d);
            let upper = bounds::det_upper_factor(n, d);
            assert!(upper <= 2 * lower);
            let mut alloc = DReallocation::new(machine, d);
            let out = DeterministicAdversary::new(d).run(&mut alloc);
            assert!(
                (lower..=upper).contains(&out.peak_load),
                "measured {} outside [{lower}, {upper}] at N={n}, d={d}",
                out.peak_load
            );
        }
    }
}
