//! Reproducibility guarantees: equal seeds give equal sequences, equal
//! runs, and parallel sweeps match serial execution bit for bit.

use partalloc::prelude::*;

#[test]
fn generators_are_seed_deterministic() {
    let n = 128;
    let gens: Vec<Box<dyn Generator>> = vec![
        Box::new(ClosedLoopConfig::new(n).events(500)),
        Box::new(PoissonConfig::new(n).arrivals(200)),
        Box::new(BurstyConfig::new(n).cycles(5)),
        Box::new(PhasedConfig::new(n)),
    ];
    for g in gens {
        assert_eq!(g.generate(42), g.generate(42), "{} unstable", g.label());
        assert_ne!(g.generate(42), g.generate(43), "{} ignores seed", g.label());
    }
}

#[test]
fn runs_are_deterministic_including_randomized() {
    let n = 64;
    let machine = BuddyTree::new(n).unwrap();
    let seq = ClosedLoopConfig::new(n).events(800).generate(1);
    for kind in [
        AllocatorKind::Constant,
        AllocatorKind::Greedy,
        AllocatorKind::Basic,
        AllocatorKind::DRealloc(2),
        AllocatorKind::Randomized,
    ] {
        let run = |seed| {
            let mut a = kind.build(machine, seed);
            run_sequence_dyn(a.as_mut(), &seq).load_profile
        };
        assert_eq!(
            run(7),
            run(7),
            "{} unstable under a fixed seed",
            kind.label()
        );
    }
    // The randomized allocator must differ across seeds (on a long
    // enough sequence this fails with negligible probability).
    let a = {
        let mut x = AllocatorKind::Randomized.build(machine, 1);
        run_sequence_dyn(x.as_mut(), &seq).load_profile
    };
    let b = {
        let mut x = AllocatorKind::Randomized.build(machine, 2);
        run_sequence_dyn(x.as_mut(), &seq).load_profile
    };
    assert_ne!(a, b);
}

#[test]
fn parallel_sweep_equals_serial() {
    let n = 64;
    let machine = BuddyTree::new(n).unwrap();
    let points: Vec<(u64, u64)> = (0..24).map(|i| (i % 4, 100 + i)).collect();
    let work = |&(d, seed): &(u64, u64)| {
        let seq = ClosedLoopConfig::new(n).events(600).generate(seed);
        run_sequence(DReallocation::new(machine, d), &seq).peak_load
    };
    let serial: Vec<u64> = points.iter().map(work).collect();
    let parallel = parallel_sweep(&points, work);
    assert_eq!(serial, parallel);
}

#[test]
fn adversary_outcome_is_deterministic() {
    let machine = BuddyTree::new(256).unwrap();
    let game = || {
        let mut g = Greedy::new(machine);
        DeterministicAdversary::new(u64::MAX).run(&mut g)
    };
    let (a, b) = (game(), game());
    assert_eq!(a.sequence, b.sequence);
    assert_eq!(a.peak_load, b.peak_load);
}

#[test]
fn sigma_r_is_seed_deterministic() {
    let machine = BuddyTree::with_levels(8).unwrap();
    for gen in [
        RandomHardSequence::new(machine),
        RandomHardSequence::aggressive(machine),
    ] {
        assert_eq!(gen.generate(5), gen.generate(5));
        assert_ne!(gen.generate(5), gen.generate(6));
    }
}
