//! Full-pipeline integration: every allocator, over every workload
//! family, with an independent shadow that re-derives PE loads from
//! the allocator's reported placements and migrations. Catches any
//! divergence between what an allocator *says* it did (placements)
//! and what its load engine *thinks* happened.

use std::collections::HashMap;

use partalloc::prelude::*;

/// Mirror of placements, rebuilt only from the Allocator trait's
/// reported outcomes.
#[derive(Default)]
struct Shadow {
    placements: HashMap<TaskId, (u8, Placement)>,
}

impl Shadow {
    fn apply(&mut self, ev: &Event, outcome: &partalloc::core::EventOutcome, seq: &TaskSequence) {
        match (ev, outcome) {
            (Event::Arrival { id, size_log2 }, partalloc::core::EventOutcome::Arrival(out)) => {
                for m in &out.migrations {
                    let entry = self
                        .placements
                        .get_mut(&m.task)
                        .expect("migrated is active");
                    assert_eq!(entry.1, m.from, "migration 'from' mismatch");
                    entry.1 = m.to;
                }
                self.placements.insert(*id, (*size_log2, out.placement));
                let _ = seq;
            }
            (Event::Departure { id }, partalloc::core::EventOutcome::Departure(freed)) => {
                let (_, p) = self.placements.remove(id).expect("departing is active");
                assert_eq!(p, *freed, "freed placement mismatch");
            }
            _ => panic!("outcome kind does not match event kind"),
        }
    }

    fn pe_load(&self, machine: BuddyTree, pe: u32) -> u64 {
        let leaf = machine.leaf_of(pe);
        self.placements
            .values()
            .filter(|(_, p)| machine.contains(p.node, leaf))
            .count() as u64
    }

    fn check_against(&self, alloc: &dyn Allocator) {
        let machine = alloc.machine();
        for pe in 0..machine.num_pes() {
            assert_eq!(
                self.pe_load(machine, pe),
                alloc.pe_load(pe),
                "pe {pe} load mismatch in {}",
                alloc.name()
            );
        }
        // Placement sizes must match task sizes.
        for (&id, &(x, p)) in &self.placements {
            assert_eq!(
                machine.level_of(p.node),
                u32::from(x),
                "task {id} placed on wrong-size submachine"
            );
            assert_eq!(alloc.placement_of(id), Some(p));
        }
        // No two same-layer placements may overlap (tasks share PEs
        // only across layers/copies).
        let all: Vec<(&TaskId, &(u8, Placement))> = self.placements.iter().collect();
        for (i, (_, &(_, a))) in all.iter().enumerate() {
            for (_, &(_, b)) in all.iter().skip(i + 1) {
                if a.layer == b.layer && layered(alloc.name().as_str()) {
                    assert!(
                        !machine.contains(a.node, b.node) && !machine.contains(b.node, a.node),
                        "copy {} holds overlapping tasks in {}",
                        a.layer,
                        alloc.name()
                    );
                }
            }
        }
    }
}

/// Copy-exclusivity applies only to copy-structured algorithms
/// (A_M in greedy mode stacks tasks freely, like A_G).
fn layered(name: &str) -> bool {
    (name.starts_with("A_B") || name.starts_with("A_C") || name.starts_with("A_M(d"))
        && !name.contains("greedy")
}

fn all_kinds() -> Vec<AllocatorKind> {
    vec![
        AllocatorKind::Constant,
        AllocatorKind::Greedy,
        AllocatorKind::Basic,
        AllocatorKind::DRealloc(0),
        AllocatorKind::DRealloc(1),
        AllocatorKind::DRealloc(3),
        AllocatorKind::DReallocWith(1, EpochPolicy::Stacked, ReallocTrigger::Eager),
        AllocatorKind::DReallocWith(1, EpochPolicy::Unified, ReallocTrigger::Lazy),
        AllocatorKind::Randomized,
        AllocatorKind::LeftmostAlways,
        AllocatorKind::RoundRobin,
    ]
}

fn run_shadowed(kind: AllocatorKind, n: u64, seq: &TaskSequence, seed: u64) {
    let machine = BuddyTree::new(n).unwrap();
    let mut alloc = kind.build(machine, seed);
    let mut shadow = Shadow::default();
    for (i, ev) in seq.events().iter().enumerate() {
        let outcome = alloc.handle(ev);
        shadow.apply(ev, &outcome, seq);
        // Full check every 50 events and at the end (quadratic bits
        // inside are modest at these sizes).
        if i % 50 == 0 || i + 1 == seq.len() {
            shadow.check_against(alloc.as_ref());
        }
    }
    assert_eq!(
        alloc.active_size(),
        shadow
            .placements
            .values()
            .map(|&(x, _)| 1u64 << x)
            .sum::<u64>()
    );
}

#[test]
fn every_allocator_is_consistent_on_closed_loop() {
    let n = 64;
    let seq = ClosedLoopConfig::new(n)
        .events(700)
        .target_load(3)
        .generate(5);
    for kind in all_kinds() {
        run_shadowed(kind, n, &seq, 5);
    }
}

#[test]
fn every_allocator_is_consistent_on_poisson() {
    let n = 32;
    let seq = PoissonConfig::new(n).arrivals(250).generate(6);
    for kind in all_kinds() {
        run_shadowed(kind, n, &seq, 6);
    }
}

#[test]
fn every_allocator_is_consistent_on_phased() {
    let n = 64;
    let seq = PhasedConfig::new(n).generate(7);
    for kind in all_kinds() {
        run_shadowed(kind, n, &seq, 7);
    }
}

#[test]
fn every_allocator_is_consistent_on_adversary_sequences() {
    // Replay an adversary transcript (built against greedy) through
    // everything else — heavy departures in bulk.
    let n = 64;
    let machine = BuddyTree::new(n).unwrap();
    let mut g = Greedy::new(machine);
    let out = DeterministicAdversary::new(u64::MAX).run(&mut g);
    for kind in all_kinds() {
        run_shadowed(kind, n, &out.sequence, 8);
    }
}

#[test]
fn validator_passes_for_every_allocator() {
    use partalloc::prelude::{validate, Violation};
    let n = 64;
    let seq = ClosedLoopConfig::new(n)
        .events(800)
        .target_load(3)
        .generate(11);
    for kind in all_kinds() {
        let machine = BuddyTree::new(n).unwrap();
        let mut alloc = kind.build(machine, 11);
        for ev in seq.events() {
            alloc.handle(ev);
        }
        let copy_structured = layered(&alloc.name());
        let violations: Vec<Violation> = validate(alloc.as_ref(), copy_structured);
        assert!(
            violations.is_empty(),
            "{} failed validation: {:?}",
            kind.label(),
            violations
        );
    }
}

#[test]
fn metrics_are_internally_consistent() {
    let n = 128;
    let seq = BurstyConfig::new(n).cycles(8).generate(9);
    for kind in all_kinds() {
        let machine = BuddyTree::new(n).unwrap();
        let mut alloc = kind.build(machine, 9);
        let m = run_sequence_dyn(alloc.as_mut(), &seq);
        assert_eq!(m.events, seq.len());
        assert_eq!(m.load_profile.len(), seq.len());
        assert_eq!(m.peak_load, m.load_profile.iter().copied().max().unwrap());
        assert_eq!(m.final_load, *m.load_profile.last().unwrap());
        assert_eq!(m.per_pe_final.len(), n as usize);
        assert_eq!(
            m.final_load,
            m.per_pe_final.iter().copied().max().unwrap(),
            "final load must equal the max per-PE load for {}",
            m.allocator
        );
        assert!(m.physical_migrations <= m.migrations);
        if !kind.reallocates() {
            assert_eq!(m.realloc_events, 0);
            assert_eq!(m.migrations, 0);
        }
    }
}
