//! # partalloc
//!
//! A Rust implementation of
//! Gao, Rosenberg, Sitaraman, *"On Trading Task Reallocation for Thread
//! Management in Partitionable Multiprocessors"* (SPAA 1996): online
//! processor allocation for hierarchically decomposable multiprocessors,
//! with the paper's full algorithm suite, lower-bound adversaries,
//! workload generators, and a discrete-event simulation harness.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`topology`] — buddy-tree decomposition and concrete machines
//!   (tree, hypercube, mesh, butterfly, CM-5-class fat tree);
//! * [`model`] — tasks, events, sequences, `s(σ)` and `L*`;
//! * [`core`] — the allocation algorithms (`A_C`, `A_G`, `A_B`, `A_M`,
//!   `A_rand`, the repacker `A_R`, and baselines);
//! * [`adversary`] — the deterministic lower-bound adversary (Thm 4.3)
//!   and the random hard sequence (Thm 5.2);
//! * [`workload`] — synthetic workload generators and trace replay;
//! * [`engine`] — the unified event engine: one batched,
//!   observer-instrumented drive loop shared by the simulator, the
//!   service, the CLI and the benches;
//! * [`sim`] — the simulation harness over the engine: run helpers,
//!   timelines, and parallel sweeps;
//! * [`analysis`] — the paper's bound formulas, statistics, tables;
//! * [`service`] — the allocation daemon (sharded machines, NDJSON
//!   over TCP, live metrics, snapshot persistence);
//! * [`cluster`] — the multi-node plane: a stateless routing tier,
//!   node lifecycle, and cluster-wide chaos convergence over N
//!   daemons;
//! * [`tracestore`] — the indexed on-disk trace store: checksummed
//!   append-only segments with sidecar indexes, an interactive query
//!   REPL, and store-to-store diffing.
//!
//! ## Quickstart
//!
//! ```
//! use partalloc::prelude::*;
//!
//! // A 64-PE tree machine and a random multi-user workload.
//! let machine = BuddyTree::new(64).unwrap();
//! let workload = ClosedLoopConfig::new(64)
//!     .events(2_000)
//!     .target_load(3)
//!     .generate(42);
//!
//! // Run the paper's d-reallocation algorithm with d = 2 ...
//! let alloc = DReallocation::new(machine, 2);
//! let run = run_sequence(alloc, &workload);
//!
//! // ... and compare against the optimum L* = ceil(s(σ)/N).
//! let lstar = workload.optimal_load(64);
//! assert!(run.peak_load <= (2 + 1) * lstar);   // Theorem 4.2
//! ```

#![forbid(unsafe_code)]

// Compile-check the README's code example as a doctest.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

pub use partalloc_adversary as adversary;
pub use partalloc_analysis as analysis;
pub use partalloc_cluster as cluster;
pub use partalloc_core as core;
pub use partalloc_engine as engine;
pub use partalloc_exclusive as exclusive;
pub use partalloc_model as model;
pub use partalloc_service as service;
pub use partalloc_sim as sim;
pub use partalloc_topology as topology;
pub use partalloc_tracestore as tracestore;
pub use partalloc_workload as workload;

/// Convenient glob import of the most common types.
pub mod prelude {
    pub use partalloc_adversary::{
        AdversaryOutcome, DepartureRule, DeterministicAdversary, RandomHardSequence,
    };
    pub use partalloc_analysis::{
        bar_chart, bounds, fmt_f64, line_chart_svg, load_heatmap, multi_sparkline, sparkline,
        LinearFit, Summary, Table,
    };
    pub use partalloc_cluster::{
        ClusterClient, ClusterConfig, ClusterCore, ClusterHarness, ClusterServer,
    };
    pub use partalloc_core::validate::{validate, Violation};
    pub use partalloc_core::{
        greedy_threshold, repack, Allocator, AllocatorKind, Basic, Constant, CopyFit,
        DReallocation, EpochPolicy, Greedy, LeftmostAlways, Migration, Placement,
        RandomizedDRealloc, RandomizedOblivious, ReallocTrigger, RoundRobin, TieBreak,
    };
    pub use partalloc_engine::{
        CostObserver, Engine, EpochObserver, InvariantObserver, LoadProfileRecorder,
        MetricsObserver, Observer, SizeTable, SlowdownObserver, Step,
    };
    pub use partalloc_exclusive::{
        run_exclusive, run_exclusive_with_policy, BuddyStrategy, FullRecognition, GrayCodeStrategy,
        QueuePolicy, SubcubeStrategy,
    };
    pub use partalloc_model::{
        figure1_sigma_star, read_trace, write_trace, Event, SequenceBuilder, SequenceStats, Task,
        TaskId, TaskSequence,
    };
    pub use partalloc_service::{
        RouterKind, Server, ServiceConfig, ServiceCore, ServiceHandle, ServiceSnapshot, TcpClient,
    };
    pub use partalloc_sim::{
        execute, parallel_sweep, run_sequence, run_sequence_dyn, run_with_cost, run_with_slowdowns,
        ExecutorConfig, MigrationCostModel, RunMetrics, Span, Timeline,
    };
    pub use partalloc_topology::{
        BuddyTree, Butterfly, FatTree, Hypercube, Mesh2D, NodeId, Partitionable, TopologyKind,
        Torus2D, TreeMachine,
    };
    pub use partalloc_tracestore::{diff_stores, run_repl, Ingest, TraceStore};
    pub use partalloc_workload::{
        parse_swf, BurstyConfig, ClosedLoopConfig, DiurnalConfig, Generator, PhasedConfig,
        PoissonConfig, SizeDistribution, SwfImport, TimedConfig, TimedTask, TimedWorkload,
    };
}
