//! Record / replay workflow: capture a workload as a versioned JSON
//! trace, reload it, and confirm every algorithm reproduces the exact
//! same run — the harness pattern for sharing regression inputs.
//!
//! ```text
//! cargo run --release --example trace_workflow
//! ```

use partalloc::prelude::*;

fn main() {
    let n: u64 = 128;
    let machine = BuddyTree::new(n).expect("power-of-two machine");

    // 1. Generate a workload and write it out.
    let seq = PoissonConfig::new(n)
        .arrivals(500)
        .sizes(SizeDistribution::Bimodal {
            small_log2: 0,
            large_log2: 5,
            large_prob: 0.15,
        })
        .generate(7);
    let path = std::env::temp_dir().join("partalloc-example-trace.json");
    write_trace(&path, &seq).expect("trace written");
    let bytes = std::fs::metadata(&path).expect("trace exists").len();
    println!(
        "recorded {} events ({} users) to {} ({bytes} bytes)\n",
        seq.len(),
        seq.num_tasks(),
        path.display()
    );

    // 2. Read it back; the loader validates structure, version and
    //    sequence well-formedness.
    let replayed = read_trace(&path).expect("trace read back");
    assert_eq!(replayed, seq);
    println!("reload: byte-identical sequence, validation passed");

    // 3. Replay through the allocators: deterministic algorithms must
    //    reproduce exactly; the randomized one reproduces per seed.
    let mut table = Table::new(&["algorithm", "peak (run 1)", "peak (replay)", "identical?"]);
    for kind in [
        AllocatorKind::Greedy,
        AllocatorKind::Basic,
        AllocatorKind::DRealloc(2),
        AllocatorKind::Constant,
        AllocatorKind::Randomized,
    ] {
        let m1 = {
            let mut a = kind.build(machine, 11);
            run_sequence_dyn(a.as_mut(), &seq)
        };
        let m2 = {
            let mut a = kind.build(machine, 11);
            run_sequence_dyn(a.as_mut(), &replayed)
        };
        assert_eq!(m1.load_profile, m2.load_profile);
        table.row(&[
            m1.allocator.clone(),
            m1.peak_load.to_string(),
            m2.peak_load.to_string(),
            "yes".to_string(),
        ]);
    }
    println!("{}", table.render_text());

    std::fs::remove_file(&path).ok();
    println!("trace file cleaned up — done.");
}
