//! Watch fragmentation build and get swept away: the same hostile
//! workload rendered as occupancy timelines (PE rows × time columns)
//! for a never-reallocating allocator, a periodic one, and the
//! always-reallocating optimum — plus an SVG export of each.
//!
//! ```text
//! cargo run --release --example fragmentation_movie
//! ```

use partalloc::prelude::*;

fn main() {
    let n: u64 = 64;
    let machine = BuddyTree::new(n).expect("power-of-two machine");

    // Waves of uniform task sizes with random half-drains between
    // them: survivors scatter and pin fragmentation in place.
    let seq = PhasedConfig::new(n).waves(18).generate(7);
    println!(
        "workload: {} events, {} tasks, L* = {} on {n} PEs\n",
        seq.len(),
        seq.num_tasks(),
        seq.optimal_load(n)
    );

    let runs: Vec<(&str, AllocatorKind)> = vec![
        (
            "A_G — never reallocates: survivors pin holes, big tasks stack",
            AllocatorKind::Greedy,
        ),
        (
            "A_M(d=1) — periodic repacks sweep the holes",
            AllocatorKind::DRealloc(1),
        ),
        (
            "A_C — reallocates every arrival: always tight",
            AllocatorKind::Constant,
        ),
    ];
    let out_dir = std::env::temp_dir().join("partalloc-movie");
    std::fs::create_dir_all(&out_dir).expect("temp dir");
    for (caption, kind) in runs {
        let timeline = Timeline::record(kind.build(machine, 7), &seq);
        println!("== {caption} ==");
        println!("{}", timeline.render_ascii(96, 8));
        let svg_path = out_dir.join(format!(
            "{}.svg",
            kind.label().replace(['(', ')', '='], "_")
        ));
        std::fs::write(&svg_path, timeline.render_svg(1280, 400)).expect("svg written");
        println!("   (SVG: {})\n", svg_path.display());
    }
    println!(
        "reading: in the A_G panel the shaded load deepens with every wave as\n\
         survivors block clean submachines; A_M(d=1)'s panel shows the periodic\n\
         'sweeps' where columns go uniform again; A_C never lets texture build.\n\
         This is the paper's trade-off as a picture."
    );
}
