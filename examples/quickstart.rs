//! Quickstart: allocate a multi-user workload on a 256-PE tree machine
//! and see the paper's trade-off in one table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use partalloc::prelude::*;

fn main() {
    // A 256-PE partitionable machine (the paper's complete-binary-tree
    // model; see `topology_tour` for hypercubes, meshes, fat trees).
    let n: u64 = 256;
    let machine = BuddyTree::new(n).expect("power-of-two machine");

    // A saturated time-shared workload: users arrive, grab power-of-two
    // submachines, run for unpredictable times, leave. The closed loop
    // caps the active size at 2N, so the optimal load L* is at most 2.
    let workload = ClosedLoopConfig::new(n)
        .events(5_000)
        .target_load(2)
        .generate(42);
    let lstar = workload.optimal_load(n);
    println!(
        "workload: {} events, {} users, peak active size {} → L* = {lstar}\n",
        workload.len(),
        workload.num_tasks(),
        workload.peak_active_size()
    );

    // The paper's spectrum: d = 0 reallocates on every arrival and is
    // optimal but pays constant migration; growing d reallocates less
    // and loads more, saturating at greedy (never reallocates).
    let mut table = Table::new(&[
        "algorithm",
        "peak load",
        "peak/L*",
        "bound",
        "reallocations",
    ]);
    let threshold = greedy_threshold(machine);
    for d in 0..=threshold {
        let metrics = run_sequence(DReallocation::new(machine, d), &workload);
        table.row(&[
            metrics.allocator.clone(),
            metrics.peak_load.to_string(),
            fmt_f64(metrics.peak_ratio(), 2),
            format!("≤ {}", bounds::det_upper_factor(n, d) * lstar),
            metrics.realloc_events.to_string(),
        ]);
    }
    let greedy = run_sequence(Greedy::new(machine), &workload);
    let greedy_profile = greedy.load_profile.clone();
    table.row(&[
        "A_G (d = ∞)".to_string(),
        greedy.peak_load.to_string(),
        fmt_f64(greedy.peak_ratio(), 2),
        format!("≤ {}", bounds::greedy_upper_factor(n) * lstar),
        "0".to_string(),
    ]);
    println!("{}", table.render_text());
    println!("greedy load over time   {}", sparkline(&greedy_profile, 64));
    println!(
        "\nTheorem 4.2 in action: load ≤ min{{d+1, ⌈(log N + 1)/2⌉}} · L* — pick d\n\
         by how much checkpoint/migration traffic the machine can afford."
    );
}
