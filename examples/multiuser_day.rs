//! A day in the life of a shared 512-PE machine (the CM-5/SP2 scenario
//! that motivates the paper): a morning Poisson trickle, a bursty
//! afternoon crunch, and a fragmented evening — allocated end to end,
//! with per-user slowdowns and the migration bill priced on CM-5
//! fat-tree geometry.
//!
//! ```text
//! cargo run --release --example multiuser_day
//! ```

use partalloc::prelude::*;

fn main() {
    let n: u64 = 512;
    let machine = BuddyTree::new(n).expect("power-of-two machine");
    let fat_tree = FatTree::new(n).expect("CM-5-class fat tree");
    let model = MigrationCostModel::standard();
    let seed = 2024;

    // Three shifts, spliced into one sequence (`concat` renumbers ids;
    // leftover morning jobs keep running into the afternoon).
    let morning = PoissonConfig::new(n)
        .arrivals(400)
        .arrival_rate(0.8)
        .sizes(SizeDistribution::Geometric {
            max_log2: 7,
            ratio: 0.55,
        })
        .generate(seed);
    let afternoon = BurstyConfig::new(n)
        .cycles(8)
        .burst_load(2)
        .drain_fraction(0.6)
        .generate(seed + 1);
    let evening = PhasedConfig::new(n).waves(10).generate(seed + 2);
    let day = morning.concat(&afternoon).concat(&evening);
    let stats = day.stats();
    println!(
        "the day: {} events, {} users, peak {} active tasks ({} PEs), L* = {}\n",
        stats.num_events,
        stats.num_arrivals,
        stats.peak_active_tasks,
        stats.peak_active_size,
        day.optimal_load(n)
    );

    // Size mix, as a supercomputing center would report it.
    println!("request mix:");
    for (x, count) in stats.size_histogram.iter().enumerate() {
        if *count > 0 {
            println!("  {:>4}-PE jobs: {count}", 1u64 << x);
        }
    }
    println!();

    // How each policy treats the users.
    let mut table = Table::new(&[
        "policy",
        "peak load",
        "mean slowdown",
        "p95",
        "worst user",
        "migration cost (fat tree)",
    ]);
    let policies: Vec<(&str, AllocatorKind)> = vec![
        ("reallocate always (A_C)", AllocatorKind::Constant),
        (
            "reallocate per N arrivals (A_M d=1)",
            AllocatorKind::DRealloc(1),
        ),
        (
            "reallocate per 3N arrivals (A_M d=3)",
            AllocatorKind::DRealloc(3),
        ),
        ("never reallocate (A_G)", AllocatorKind::Greedy),
        ("never, copies (A_B)", AllocatorKind::Basic),
        ("random placement (A_rand)", AllocatorKind::Randomized),
    ];
    for (label, kind) in policies {
        let (metrics, cost) = run_with_cost(kind.build(machine, seed), &day, &fat_tree, &model);
        let slow = run_with_slowdowns(kind.build(machine, seed), &day);
        table.row(&[
            label.to_string(),
            metrics.peak_load.to_string(),
            fmt_f64(slow.mean, 2),
            slow.p95.to_string(),
            slow.worst.to_string(),
            fmt_f64(cost.total_cost, 0),
        ]);
    }
    println!("{}", table.render_text());
    println!(
        "reading: frequent reallocation keeps every user near full speed but moves\n\
         large amounts of checkpoint state across the fat tree; d trades one\n\
         against the other, exactly as the paper's title promises."
    );
}
