//! Watch the Theorem 4.3 adversary dismantle an online allocator,
//! phase by phase.
//!
//! The adversary fills the machine with unit tasks, then repeatedly
//! (a) inspects the algorithm's placement, (b) kills the *better
//! packed* half of every submachine (keeping the fragmented half),
//! and (c) refills with double-sized tasks that no longer fit the
//! holes. Each phase costs the algorithm about half a unit of load,
//! and after `min{d, log N}` phases the load is
//! `⌈(min{d, log N} + 1)/2⌉` — on a sequence a clairvoyant packer
//! would have served with load 1.
//!
//! ```text
//! cargo run --release --example adversary_duel
//! ```

use partalloc::prelude::*;

fn main() {
    let n: u64 = 1024;
    let machine = BuddyTree::new(n).expect("power-of-two machine");

    println!("== duel 1: the adversary vs greedy (d = ∞) on N = {n} ==\n");
    let mut greedy = Greedy::new(machine);
    let outcome = DeterministicAdversary::new(u64::MAX).run(&mut greedy);
    report(&outcome);
    // Where the damage landed: final per-PE thread counts.
    let per_pe: Vec<u64> = (0..machine.num_pes())
        .map(|pe| greedy.pe_load(pe))
        .collect();
    println!(
        "final per-PE loads   {}  (scale 0..{})",
        load_heatmap(&per_pe, outcome.peak_load, 64),
        outcome.peak_load
    );

    println!("\n== duel 2: the adversary vs A_M across d ==\n");
    let mut table = Table::new(&[
        "d",
        "phases played",
        "forced load",
        "guarantee ⌈(p+1)/2⌉",
        "events in σ",
    ]);
    for d in [0u64, 1, 2, 4, 6, 8, 10] {
        let mut alloc = DReallocation::new(machine, d);
        let out = DeterministicAdversary::new(d).run(&mut alloc);
        table.row(&[
            d.to_string(),
            out.phases.to_string(),
            out.peak_load.to_string(),
            out.guaranteed_load.to_string(),
            out.sequence.len().to_string(),
        ]);
    }
    println!("{}", table.render_text());

    println!("== duel 3: replaying greedy's hard sequence against other algorithms ==\n");
    let mut table = Table::new(&["algorithm", "peak load on σ_greedy", "vs its own guarantee"]);
    for kind in [
        AllocatorKind::Greedy,
        AllocatorKind::Basic,
        AllocatorKind::Constant,
        AllocatorKind::Randomized,
    ] {
        let m = {
            let mut alloc = kind.build(machine, 7);
            run_sequence_dyn(alloc.as_mut(), &outcome.sequence)
        };
        let note = match kind {
            AllocatorKind::Greedy => "forced to the bound",
            AllocatorKind::Constant => "reallocation erases the trap",
            AllocatorKind::Randomized => "the trap was tuned to greedy, not to A_rand",
            _ => "copies fragment the same way",
        };
        table.row(&[m.allocator, m.peak_load.to_string(), note.to_string()]);
    }
    println!("{}", table.render_text());
    println!(
        "the replay shows why Theorem 4.3 is per-algorithm: σ was built by\n\
         observing greedy, and only greedy (and similar deterministic packers)\n\
         step into every trap."
    );
}

fn report(outcome: &AdversaryOutcome) {
    println!(
        "phases: {}   events: {}   arrivals: {} PEs total",
        outcome.phases,
        outcome.sequence.len(),
        outcome.sequence.total_arrival_size()
    );
    println!(
        "optimal load of the sequence: {} (active size never exceeds N)",
        outcome.lstar
    );
    println!(
        "forced load: {}   (guarantee was ≥ {})",
        outcome.peak_load, outcome.guaranteed_load
    );
    println!("forced competitive ratio: {:.2}", outcome.forced_ratio());
}
