//! Tour of the hierarchically decomposable machines: the same
//! allocation runs unchanged on a tree, hypercube, mesh, butterfly and
//! CM-5 fat tree, because all of them expose the same buddy
//! decomposition — the paper's §1 generality claim, made visible.
//!
//! ```text
//! cargo run --release --example topology_tour
//! ```

use partalloc::prelude::*;

fn main() {
    let n: u64 = 64;
    let machine = BuddyTree::new(n).expect("power-of-two machine");

    // One submachine, five physical shapes.
    let node = machine.node_at(2, 5); // a 4-PE submachine
    println!(
        "the abstract submachine {node} covers PEs {:?}\n",
        machine.pes_of(node)
    );

    let mesh = Mesh2D::new(n).unwrap();
    println!(
        "on the {}x{} mesh those PEs form the rectangle:",
        mesh.width(),
        mesh.height()
    );
    for pe in machine.pes_of(node) {
        let (x, y) = mesh.coords(pe);
        println!("  PE {pe} at ({x}, {y})");
    }
    let cube = Hypercube::new(n).unwrap();
    println!(
        "\non the {}-cube they are the subcube with fixed prefix {:06b}xx\n",
        cube.dimension(),
        machine.pes_of(node).start >> 2
    );

    // Distance profiles: how far is PE 0 from everyone?
    println!("distance from PE 0 (hops), per topology:");
    let topos: Vec<(&str, Box<dyn Partitionable>)> = vec![
        ("tree", Box::new(TreeMachine::new(n).unwrap())),
        ("hypercube", Box::new(Hypercube::new(n).unwrap())),
        ("mesh", Box::new(Mesh2D::new(n).unwrap())),
        ("torus", Box::new(Torus2D::new(n).unwrap())),
        ("butterfly", Box::new(Butterfly::new(n).unwrap())),
        ("fat tree", Box::new(FatTree::new(n).unwrap())),
    ];
    let mut table = Table::new(&["topology", "d(0,1)", "d(0,8)", "d(0,63)", "diameter"]);
    for (name, topo) in &topos {
        table.row(&[
            name.to_string(),
            topo.distance(0, 1).to_string(),
            topo.distance(0, 8).to_string(),
            topo.distance(0, 63).to_string(),
            topo.diameter().to_string(),
        ]);
    }
    println!("{}", table.render_text());

    // The same workload + allocator on all five: identical loads,
    // different migration bills.
    let seq = BurstyConfig::new(n).cycles(10).generate(99);
    let model = MigrationCostModel::standard();
    let mut table = Table::new(&["topology", "peak load", "migration cost"]);
    let mut loads = Vec::new();
    for (name, topo) in &topos {
        let (m, cost) = run_with_cost(DReallocation::new(machine, 1), &seq, topo, &model);
        loads.push(m.peak_load);
        table.row(&[
            name.to_string(),
            m.peak_load.to_string(),
            fmt_f64(cost.total_cost, 0),
        ]);
    }
    println!("{}", table.render_text());
    assert!(loads.windows(2).all(|w| w[0] == w[1]));
    println!(
        "identical loads everywhere — the allocation algorithms never look past\n\
         the buddy decomposition; only the *price* of moving state differs."
    );
}
